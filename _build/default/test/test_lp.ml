(* dt_lp: simplex and branch-and-bound MILP. *)

open Dt_lp

let check_float = Alcotest.(check (float 1e-6))

let le coeffs rhs = { Simplex.coeffs; cmp = Simplex.Le; rhs }
let ge coeffs rhs = { Simplex.coeffs; cmp = Simplex.Ge; rhs }
let eq coeffs rhs = { Simplex.coeffs; cmp = Simplex.Eq; rhs }

let simple_lp () =
  (* max x + y s.t. x + 2y <= 4, 3x + y <= 6  => minimize -(x+y) *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [ (0, -1.0); (1, -1.0) ];
      constraints = [ le [ (0, 1.0); (1, 2.0) ] 4.0; le [ (0, 3.0); (1, 1.0) ] 6.0 ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s ->
      check_float "objective" (-.2.8) s.Simplex.objective_value;
      check_float "x" 1.6 s.Simplex.values.(0);
      check_float "y" 1.2 s.Simplex.values.(1)
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "expected optimum"

let equality_lp () =
  (* min x + y s.t. x + y = 3, x >= 1 *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [ (0, 1.0); (1, 1.0) ];
      constraints = [ eq [ (0, 1.0); (1, 1.0) ] 3.0; ge [ (0, 1.0) ] 1.0 ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s -> check_float "objective" 3.0 s.Simplex.objective_value
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "expected optimum"

let infeasible_lp () =
  let p =
    {
      Simplex.num_vars = 1;
      objective = [ (0, 1.0) ];
      constraints = [ ge [ (0, 1.0) ] 2.0; le [ (0, 1.0) ] 1.0 ];
    }
  in
  Alcotest.(check bool) "infeasible" true (Simplex.solve p = Simplex.Infeasible)

let unbounded_lp () =
  let p =
    { Simplex.num_vars = 1; objective = [ (0, -1.0) ]; constraints = [ ge [ (0, 1.0) ] 0.0 ] }
  in
  Alcotest.(check bool) "unbounded" true (Simplex.solve p = Simplex.Unbounded)

let negative_rhs_lp () =
  (* min x s.t. -x <= -2  (i.e. x >= 2) *)
  let p =
    { Simplex.num_vars = 1; objective = [ (0, 1.0) ]; constraints = [ le [ (0, -1.0) ] (-2.0) ] }
  in
  match Simplex.solve p with
  | Simplex.Optimal s -> check_float "x" 2.0 s.Simplex.values.(0)
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "expected optimum"

let degenerate_lp () =
  (* duplicated constraints and a zero-cost variable *)
  let p =
    {
      Simplex.num_vars = 2;
      objective = [ (0, 1.0) ];
      constraints =
        [ ge [ (0, 1.0) ] 1.0; ge [ (0, 1.0) ] 1.0; le [ (0, 1.0); (1, 1.0) ] 5.0 ];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal s -> check_float "objective" 1.0 s.Simplex.objective_value
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "expected optimum"

let out_of_range () =
  let p =
    { Simplex.num_vars = 1; objective = []; constraints = [ le [ (3, 1.0) ] 1.0 ] }
  in
  Alcotest.check_raises "index range"
    (Invalid_argument "Simplex.solve: variable index out of range") (fun () ->
      ignore (Simplex.solve p))

let knapsack_milp () =
  (* max 10a + 6b + 4c, a+b+c <= 2, binaries => min -(...) = -16 (a,b) *)
  let binary j = le [ (j, 1.0) ] 1.0 in
  let p =
    {
      Milp.relaxation =
        {
          Simplex.num_vars = 3;
          objective = [ (0, -10.0); (1, -6.0); (2, -4.0) ];
          constraints =
            [ le [ (0, 1.0); (1, 1.0); (2, 1.0) ] 2.0; binary 0; binary 1; binary 2 ];
        };
      integer_vars = [ 0; 1; 2 ];
    }
  in
  match (Milp.solve p).Milp.best with
  | Some s ->
      check_float "objective" (-16.0) s.Simplex.objective_value;
      check_float "a" 1.0 s.Simplex.values.(0);
      check_float "b" 1.0 s.Simplex.values.(1);
      check_float "c" 0.0 s.Simplex.values.(2)
  | None -> Alcotest.fail "expected incumbent"

let milp_fractional_forced () =
  (* min -x, 2x <= 3, x integer => x = 1 (relaxation would give 1.5) *)
  let p =
    {
      Milp.relaxation =
        {
          Simplex.num_vars = 1;
          objective = [ (0, -1.0) ];
          constraints = [ le [ (0, 2.0) ] 3.0 ];
        };
      integer_vars = [ 0 ];
    }
  in
  match (Milp.solve p).Milp.best with
  | Some s -> check_float "x" 1.0 s.Simplex.values.(0)
  | None -> Alcotest.fail "expected incumbent"

let milp_infeasible () =
  let p =
    {
      Milp.relaxation =
        {
          Simplex.num_vars = 1;
          objective = [ (0, 1.0) ];
          constraints = [ ge [ (0, 1.0) ] 2.0; le [ (0, 1.0) ] 1.0 ];
        };
      integer_vars = [ 0 ];
    }
  in
  let o = Milp.solve p in
  Alcotest.(check bool) "infeasible" true (o.Milp.status = Milp.Infeasible)

let milp_node_limit () =
  (* A feasibility-hard parity-flavoured problem with a tiny node budget
     still terminates and reports the truncation. *)
  let n = 8 in
  let binary j = le [ (j, 1.0) ] 1.0 in
  let p =
    {
      Milp.relaxation =
        {
          Simplex.num_vars = n;
          objective = List.init n (fun j -> (j, 1.0));
          constraints =
            eq (List.init n (fun j -> (j, 1.0))) (float_of_int (n / 2))
            :: List.init n binary;
        };
      integer_vars = List.init n (fun j -> j);
    }
  in
  let o = Milp.solve ~node_limit:1 p in
  Alcotest.(check bool) "truncated or solved at the root" true
    (o.Milp.status = Milp.Node_limit || o.Milp.status = Milp.Optimal)

(* Random small MILPs: branch and bound agrees with exhaustive enumeration
   over the binary assignments. *)
let prop_milp_matches_enumeration =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 4 in
      let* costs = list_repeat n (int_range (-5) 5) in
      let* rows = int_range 1 3 in
      let* coefs = list_repeat rows (list_repeat n (int_range (-3) 3)) in
      let* rhs = list_repeat rows (int_range 0 6) in
      return (n, List.map float_of_int costs,
              List.map (List.map float_of_int) coefs,
              List.map float_of_int rhs))
  in
  let print (n, costs, coefs, rhs) =
    Format.asprintf "n=%d costs=%a rows=%a rhs=%a" n
      Fmt.(Dump.list float) costs
      Fmt.(Dump.list (Dump.list float)) coefs
      Fmt.(Dump.list float) rhs
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"MILP = exhaustive enumeration" ~print gen
       (fun (n, costs, coefs, rhs) ->
         let binary j = le [ (j, 1.0) ] 1.0 in
         let rows =
           List.map2 (fun c r -> le (List.mapi (fun j v -> (j, v)) c) r) coefs rhs
         in
         let p =
           {
             Milp.relaxation =
               {
                 Simplex.num_vars = n;
                 objective = List.mapi (fun j c -> (j, c)) costs;
                 constraints = rows @ List.init n binary;
               };
             integer_vars = List.init n (fun j -> j);
           }
         in
         (* enumerate all 2^n assignments *)
         let best = ref Float.infinity in
         for mask = 0 to (1 lsl n) - 1 do
           let x j = if mask land (1 lsl j) <> 0 then 1.0 else 0.0 in
           let feasible =
             List.for_all2
               (fun c r ->
                 List.fold_left ( +. ) 0.0 (List.mapi (fun j v -> v *. x j) c) <= r +. 1e-9)
               coefs rhs
           in
           if feasible then begin
             let obj = List.fold_left ( +. ) 0.0 (List.mapi (fun j c -> c *. x j) costs) in
             if obj < !best then best := obj
           end
         done;
         match ((Milp.solve p).Milp.best, !best) with
         | None, b -> b = Float.infinity
         | Some s, b -> Float.abs (s.Simplex.objective_value -. b) <= 1e-6))

let suite =
  [
    Alcotest.test_case "simple LP" `Quick simple_lp;
    Alcotest.test_case "equality LP" `Quick equality_lp;
    Alcotest.test_case "infeasible LP" `Quick infeasible_lp;
    Alcotest.test_case "unbounded LP" `Quick unbounded_lp;
    Alcotest.test_case "negative rhs" `Quick negative_rhs_lp;
    Alcotest.test_case "degenerate LP" `Quick degenerate_lp;
    Alcotest.test_case "index validation" `Quick out_of_range;
    Alcotest.test_case "knapsack MILP" `Quick knapsack_milp;
    Alcotest.test_case "forced rounding" `Quick milp_fractional_forced;
    Alcotest.test_case "infeasible MILP" `Quick milp_infeasible;
    Alcotest.test_case "node limit" `Quick milp_node_limit;
    prop_milp_matches_enumeration;
  ]

(* Independent cross-check: for small LPs with a bounded feasible region,
   the optimum sits at a vertex, i.e. at the intersection of [n] active
   constraints. Enumerate all candidate vertices with a tiny Gaussian
   elimination and compare objectives with the simplex. *)
let solve_linear_system a b =
  (* a: n x n, b: n; returns None when singular *)
  let n = Array.length b in
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let ok = ref true in
  for col = 0 to n - 1 do
    (* partial pivoting *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
    done;
    if Float.abs m.(!pivot).(col) < 1e-9 then ok := false
    else begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      for r = 0 to n - 1 do
        if r <> col then begin
          let f = m.(r).(col) /. m.(col).(col) in
          for c = col to n do
            m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
          done
        end
      done
    end
  done;
  if not !ok then None
  else Some (Array.init n (fun i -> m.(i).(n) /. m.(i).(i)))

let rec subsets k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest -> List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let prop_simplex_matches_vertex_enumeration =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 3 in
      let* rows = int_range 1 3 in
      let* costs = list_repeat n (int_range (-4) 4) in
      let* coefs = list_repeat rows (list_repeat n (int_range 0 3)) in
      let* rhs = list_repeat rows (int_range 1 8) in
      return (n, List.map float_of_int costs,
              List.map (List.map float_of_int) coefs, List.map float_of_int rhs))
  in
  let print (n, c, a, b) =
    Format.asprintf "n=%d c=%a a=%a b=%a" n Fmt.(Dump.list float) c
      Fmt.(Dump.list (Dump.list float)) a Fmt.(Dump.list float) b
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"simplex = vertex enumeration" ~print gen
       (fun (n, costs, coefs, rhs) ->
         (* bound the region with x_i <= 10 so it is always a polytope *)
         let box = List.init n (fun j -> (List.init n (fun k -> if k = j then 1.0 else 0.0), 10.0)) in
         let all_rows = List.map2 (fun c r -> (c, r)) coefs rhs @ box in
         let problem =
           {
             Simplex.num_vars = n;
             objective = List.mapi (fun j c -> (j, c)) costs;
             constraints =
               List.map (fun (c, r) -> le (List.mapi (fun j v -> (j, v)) c) r) all_rows;
           }
         in
         (* candidate active sets: n constraints drawn from rows + the
            nonnegativity constraints x_j >= 0 *)
         let nonneg = List.init n (fun j -> (List.init n (fun k -> if k = j then 1.0 else 0.0), 0.0)) in
         let candidates = all_rows @ nonneg in
         let feasible x =
           List.for_all2 (fun c r ->
               List.fold_left ( +. ) 0.0 (List.mapi (fun j v -> v *. List.nth x j) c)
               <= r +. 1e-6)
             (List.map fst all_rows) (List.map snd all_rows)
           && List.for_all (fun v -> v >= -1e-6) x
         in
         let best = ref Float.infinity in
         List.iter
           (fun active ->
             let a = Array.of_list (List.map (fun (c, _) -> Array.of_list c) active) in
             let b = Array.of_list (List.map snd active) in
             match solve_linear_system a b with
             | None -> ()
             | Some x ->
                 let x = Array.to_list x in
                 if feasible x then begin
                   let obj =
                     List.fold_left ( +. ) 0.0 (List.mapi (fun j c -> c *. List.nth x j) costs)
                   in
                   if obj < !best then best := obj
                 end)
           (subsets n candidates);
         match Simplex.solve problem with
         | Simplex.Optimal s -> Float.abs (s.Simplex.objective_value -. !best) <= 1e-6
         | Simplex.Infeasible | Simplex.Unbounded ->
             (* the box makes the region bounded and the origin feasible *)
             QCheck2.Test.fail_reportf "expected an optimum (vertex best %g)" !best))

let suite = suite @ [ prop_simplex_matches_vertex_enumeration ]
