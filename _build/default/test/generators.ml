(* QCheck2 generators shared by the property-test suites. *)

open Dt_core

let task_gen =
  QCheck2.Gen.(
    let* comm = map (fun x -> float_of_int x /. 4.0) (int_range 0 40) in
    let* comp = map (fun x -> float_of_int x /. 4.0) (int_range 0 40) in
    let* mem_extra = map (fun x -> float_of_int x /. 4.0) (int_range 0 8) in
    (* memory defaults to the communication time, sometimes padded, and is
       kept positive so that a capacity can always accommodate the task *)
    let mem = Float.max 0.25 (comm +. mem_extra) in
    return (fun id -> Task.make ~id ~comm ~comp ~mem ()))

(* An instance whose capacity always admits every task individually:
   capacity = m_c * (1 + slack). *)
let instance_gen ?(min_size = 1) ?(max_size = 8) () =
  QCheck2.Gen.(
    let* n = int_range min_size max_size in
    let* mk = list_repeat n task_gen in
    let* slack = map (fun x -> float_of_int x /. 8.0) (int_range 0 16) in
    let tasks = List.mapi (fun i f -> f i) mk in
    let m_c =
      List.fold_left (fun acc (t : Task.t) -> Float.max acc t.Task.mem) 0.25 tasks
    in
    return (Instance.make ~capacity:(m_c *. (1.0 +. slack)) tasks))

(* Instances where memory equals communication time exactly (the paper's
   convention), used by solvers that assume it. *)
let paper_instance_gen ?(min_size = 1) ?(max_size = 6) () =
  QCheck2.Gen.(
    let* n = int_range min_size max_size in
    let* pairs =
      list_repeat n
        (pair
           (map (fun x -> float_of_int x /. 2.0) (int_range 1 12))
           (map (fun x -> float_of_int x /. 2.0) (int_range 0 12)))
    in
    let* slack = map (fun x -> float_of_int x /. 4.0) (int_range 0 8) in
    let m_c = List.fold_left (fun acc (cm, _) -> Float.max acc cm) 0.5 pairs in
    return (Instance.of_triples ~capacity:(m_c *. (1.0 +. slack)) pairs))

let instance_print i = Format.asprintf "%a" Instance.pp i

let prop_test ?(count = 300) ~name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print:instance_print gen prop)

let check_feasible name instance sched =
  match Schedule.check sched with
  | Ok () -> true
  | Error v ->
      QCheck2.Test.fail_reportf "%s: invalid schedule (%s) on %a" name
        (Schedule.violation_to_string v) Instance.pp instance
