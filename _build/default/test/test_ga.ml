(* dt_ga: cluster model and simulated global arrays. *)

open Dt_ga

let check_float = Alcotest.(check (float 1e-12))

let cascade_matches_paper () =
  let c = Cluster.cascade in
  Alcotest.(check int) "10 nodes" 10 c.Cluster.nodes;
  Alcotest.(check int) "16 cores" 16 c.Cluster.cores_per_node;
  (* GA dedicates one core per node: 150 worker processes *)
  Alcotest.(check int) "150 processes" 150 (Cluster.processes c)

let time_model () =
  let c = Cluster.make ~nodes:1 ~cores_per_node:2 ~flop_rate:1e9 ~bandwidth:1e9 ~latency:1e-6 () in
  check_float "comm" (1e-6 +. 1.0) (Cluster.comm_time c ~bytes:1e9);
  check_float "zero bytes free" 0.0 (Cluster.comm_time c ~bytes:0.0);
  check_float "comp" 2.0 (Cluster.comp_time c ~flops:2e9);
  check_float "zero flops free" 0.0 (Cluster.comp_time c ~flops:0.0)

let cluster_validation () =
  Alcotest.check_raises "no workers"
    (Invalid_argument "Cluster.make: service cores must leave at least one worker") (fun () ->
      ignore
        (Cluster.make ~service_cores_per_node:2 ~nodes:1 ~cores_per_node:2 ~flop_rate:1e9
           ~bandwidth:1e9 ()));
  Alcotest.check_raises "bad rate" (Invalid_argument "Cluster.make: nonpositive rate")
    (fun () ->
      ignore (Cluster.make ~nodes:1 ~cores_per_node:2 ~flop_rate:0.0 ~bandwidth:1e9 ()))

let tilings = [| Dt_tensor.Tile.uniform ~dim:10 ~tile:4; Dt_tensor.Tile.uniform ~dim:6 ~tile:3 |]

let garray_structure () =
  let g = Garray.create ~nprocs:4 ~tilings () in
  Alcotest.(check int) "rank" 2 (Garray.rank g);
  Alcotest.(check (array int)) "dims" [| 10; 6 |] (Garray.dims g);
  Alcotest.(check int) "tiles (3 x 2)" 6 (Garray.ntiles g);
  Alcotest.(check int) "first tile bytes" (8 * 4 * 3) (Garray.tile_bytes g 0);
  (* ragged last tile: 2 x 3 *)
  Alcotest.(check int) "last tile bytes" (8 * 2 * 3) (Garray.tile_bytes g 5)

let garray_round_robin () =
  let g = Garray.create ~nprocs:4 ~tilings () in
  Alcotest.(check (list int)) "owners" [ 0; 1; 2; 3; 0; 1 ]
    (List.init 6 (Garray.owner g));
  Alcotest.(check (list int)) "locals of 0" [ 0; 4 ] (Garray.local_tiles g ~proc:0);
  Alcotest.(check bool) "is_local" true (Garray.is_local g ~proc:1 1)

let garray_blocked () =
  let g = Garray.create ~policy:Garray.Blocked ~nprocs:3 ~tilings () in
  Alcotest.(check (list int)) "owners" [ 0; 0; 1; 1; 2; 2 ] (List.init 6 (Garray.owner g))

let fetch_accounting () =
  let g = Garray.create ~nprocs:4 ~tilings () in
  (* proc 0 owns tiles 0 and 4; fetching 0,1,4 costs only tile 1 *)
  check_float "remote bytes" (float_of_int (Garray.tile_bytes g 1))
    (Garray.fetch_bytes g ~proc:0 [ 0; 1; 4 ]);
  check_float "all local" 0.0 (Garray.fetch_bytes g ~proc:0 [ 0; 4 ])

let remote_fraction_balances () =
  let g = Garray.create ~nprocs:5 ~tilings:[| Dt_tensor.Tile.uniform ~dim:100 ~tile:2 |] () in
  let f = Garray.remote_fraction g ~proc:2 in
  Alcotest.(check (float 1e-9)) "~ 1 - 1/P" 0.8 f

let suite =
  [
    Alcotest.test_case "cascade preset" `Quick cascade_matches_paper;
    Alcotest.test_case "time model" `Quick time_model;
    Alcotest.test_case "cluster validation" `Quick cluster_validation;
    Alcotest.test_case "garray structure" `Quick garray_structure;
    Alcotest.test_case "round-robin owners" `Quick garray_round_robin;
    Alcotest.test_case "blocked owners" `Quick garray_blocked;
    Alcotest.test_case "fetch accounting" `Quick fetch_accounting;
    Alcotest.test_case "remote fraction" `Quick remote_fraction_balances;
  ]
