#!/bin/sh
# Per-PR smoke: build, full test suite, the parallel fleet path
# end-to-end (scaling experiment at reduced workload sizes), the online
# runtime bench, and a real TCP serve/client loopback round trip. Run
# from the repository root.
set -eu

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

DTSCHED=./_build/default/bin/dtsched.exe

echo "== serve/client loopback smoke =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$DTSCHED" serve -p 0 --port-file "$tmp/port" >"$tmp/server.log" 2>&1 &
server_pid=$!
i=0
while [ ! -s "$tmp/port" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: server did not write its port file" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
port=$(cat "$tmp/port")
echo "server listening on port $port"

# Head-of-line regression: hold an idle connection open for the whole
# 20-task session below. The server runs without a pool, so before the
# multiplexed event loop this idle client would have frozen the accept
# loop and the session would never have been served.
sleep 60 | "$DTSCHED" client -p "$port" >/dev/null 2>&1 &
idle_pid=$!
sleep 0.3

# Scripted session: 20 identical tasks (comm 1, comp 0.5, mem 1) on
# capacity 10, all arrivals at 0. The link serialises the transfers, so
# the clairvoyant (= offline, by the engine's degeneration property)
# makespan is 20 + 0.5 = 20.5 exactly.
{
  echo "INIT 10 OOSCMR"
  i=0
  while [ "$i" -lt 20 ]; do
    echo "SUBMIT t$i 1 0.5 1"
    i=$((i + 1))
  done
  echo "STATS"
  echo "DRAIN"
  echo "QUIT"
} | "$DTSCHED" client -p "$port" >"$tmp/session.out"
grep -q "makespan=20.5 scheduled=20" "$tmp/session.out" || {
  echo "FAIL: 20-task drain did not match the offline makespan 20.5:" >&2
  cat "$tmp/session.out" >&2
  exit 1
}
echo "20-task session OK (drained makespan 20.5 = offline, idle connection held open)"
kill "$idle_pid" 2>/dev/null || true

# Trace replay at rate inf: every arrival is 0, so the online schedule
# must equal the offline clairvoyant one bit for bit (ratio 1.000).
"$DTSCHED" gen -k hf -n 1 -o "$tmp/traces" >/dev/null
"$DTSCHED" client -p "$port" -t "$tmp/traces/hf-p000.trace" -r inf \
  >"$tmp/replay.out"
cat "$tmp/replay.out"
grep -q "online/offline   1.000" "$tmp/replay.out" || {
  echo "FAIL: rate-inf replay diverged from the offline schedule" >&2
  exit 1
}

# SHUTDOWN while a client is still connected: the server must drain and
# exit instead of waiting on the open connection forever.
sleep 60 | "$DTSCHED" client -p "$port" >/dev/null 2>&1 &
idle2_pid=$!
sleep 0.3
printf 'SHUTDOWN\n' | "$DTSCHED" client -p "$port" >/dev/null
i=0
while kill -0 "$server_pid" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: server still running 10s after SHUTDOWN with a client open" >&2
    kill "$server_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
wait "$server_pid" 2>/dev/null || true
kill "$idle2_pid" 2>/dev/null || true
echo "server shut down cleanly with a client still connected"

echo "== core complexity sweep (fast workload) =="
EXPERIMENTS=core DTSCHED_FAST=1 dune exec bench/main.exe

echo "== core complexity smoke (wall-clock budget) =="
EXPERIMENTS=core-smoke dune exec bench/main.exe

echo "== BENCH_core.json =="
cat BENCH_core.json

echo "== residency reuse gates =="
# The tile residency model must actually hit (reuse_hit_rate > 0) and
# must never lose to the no-sharing baseline at any reuse factor: the
# replay arm of the sweep makes cached <= no-sharing structural, so a
# failure here means the residency accounting itself broke.
grep -q '"hit_rate_positive": true' BENCH_core.json || {
  echo "FAIL: residency sweep recorded a zero hit rate (see BENCH_core.json)" >&2
  exit 1
}
grep -q '"cached_never_worse": true' BENCH_core.json || {
  echo "FAIL: cached makespan exceeded the no-sharing baseline (see BENCH_core.json)" >&2
  exit 1
}
hit=$(grep -o '"reuse_hit_rate": *[0-9.]*' BENCH_core.json | grep -o '[0-9.]*$' || echo 0)
echo "reuse gates OK: hit rate up to ${hit}, cached never worse than no-sharing"

echo "== scaling experiment (fast workload) =="
EXPERIMENTS=scaling DTSCHED_FAST=1 dune exec bench/main.exe

echo "== multi-domain fleet speedup gate =="
# The sharded executor must actually win when there is hardware to win
# on: with >= 2 cores, the best multi-domain fleet run must beat the
# sequential baseline. Single-core runners cannot show a speedup by
# construction (domains time-slice one core and couple their GCs), so
# there the gate is skipped with a notice instead of silently passing.
cores=$(grep -o '"recommended_domain_count": *[0-9]*' BENCH_fleet.json | grep -o '[0-9]*$' || echo 1)
speedup=$(grep -o '"best_multi_domain_speedup": *[0-9.]*' BENCH_fleet.json | grep -o '[0-9.]*$' || echo 0)
if [ "${cores:-1}" -ge 2 ]; then
  if awk -v s="$speedup" 'BEGIN { exit !(s >= 1.0) }'; then
    echo "fleet speedup gate OK: best multi-domain speedup ${speedup}x on ${cores} cores"
  else
    echo "FAIL: best multi-domain fleet speedup ${speedup}x < 1.0 with ${cores} cores available" >&2
    exit 1
  fi
else
  # the skip must be machine-readable in the artifact, not just in this log
  grep -q '"gate_skipped_single_core": true' BENCH_fleet.json || {
    echo "FAIL: single-core skip not recorded in BENCH_fleet.json" >&2
    exit 1
  }
  echo "NOTICE: single-core runner (recommended_domain_count=${cores}):"
  echo "NOTICE: fleet speedup gate skipped (measured ${speedup}x; >1 requires >=2 cores,"
  echo "NOTICE: recorded as gate_skipped_single_core in BENCH_fleet.json)"
fi

echo "== cluster experiment (fast workload) =="
EXPERIMENTS=cluster DTSCHED_FAST=1 dune exec bench/main.exe

echo "== cooperative-not-worse gate =="
# On a contended topology cooperative balancing must never lose to
# independent placement: Cluster.run verifies every balanced plan
# against the simulator and falls back when the model mispredicts, so a
# failure here means the verification path itself broke.
grep -q '"cooperative_not_worse": true' BENCH_cluster.json || {
  echo "FAIL: cooperative scheduling lost to independent (see BENCH_cluster.json)" >&2
  exit 1
}
best=$(grep -o '"best_speedup": *[0-9.]*' BENCH_cluster.json | grep -o '[0-9.]*$' || echo 1)
echo "cluster gate OK: cooperative never worse, best speedup ${best}x"

echo "== online experiment (fast workload) =="
EXPERIMENTS=online DTSCHED_FAST=1 dune exec bench/main.exe

echo "== C10K idle-connections gate =="
# On the epoll backend the server must sustain >= 2048 concurrent idle
# connections while still serving live sessions — fd numbers far past
# FD_SETSIZE, which the select fallback cannot even represent. Where
# epoll is unavailable (non-Linux) the bench records a skip, and the
# gate is skipped with a notice instead of silently passing.
if grep -q '"c10k": *{ *"skipped"' BENCH_runtime.json; then
  echo "NOTICE: epoll unavailable on this host; C10K gate skipped"
else
  grep -q '"c10k": *{ *"connections": 2048, "backend": "epoll", "established_s": [0-9.]*, "served": true *}' BENCH_runtime.json || {
    echo "FAIL: epoll server did not sustain 2048 concurrent idle connections (see BENCH_runtime.json)" >&2
    exit 1
  }
  echo "C10K gate OK: 2048 concurrent idle connections served on epoll"
fi

echo "== binary pipelining gate =="
# At every connection count of the mode sweep, binary framing with 16
# pipelined SUBMITs per frame must beat single-request text clients —
# the whole point of the length-prefixed codec and frame batching.
grep -q '"pipelined_binary_beats_text": true' BENCH_runtime.json || {
  echo "FAIL: binary+pipelined throughput did not beat unpipelined text (see BENCH_runtime.json)" >&2
  exit 1
}
echo "pipelining gate OK: binary+pipelined beats text unpipelined at every conn count"

echo "== zero-copy write path gates =="
# On Linux the writev stub must actually be compiled in: the looped
# single-write fallback exists for platforms without writev, and
# silently running it here would invalidate every scatter-gather
# number this PR gates on.
if [ "$(uname -s)" = "Linux" ]; then
  grep -q '"writev_available": true' BENCH_runtime.json || {
    echo "FAIL: writev stub fell back to looped write on Linux (see BENCH_runtime.json)" >&2
    exit 1
  }
  echo "writev gate OK: scatter-gather writev compiled in and used"
else
  echo "NOTICE: non-Linux host; writev availability gate skipped"
fi

# The zero-copy server must not be slower than the previous PR's
# committed numbers: geometric mean over the conns x framing sweep,
# with a 0.9 floor absorbing forked-bench noise on shared runners.
grep -q '"zero_copy_not_slower": true' BENCH_runtime.json || {
  echo "FAIL: zero-copy server lost throughput against the committed baseline (see BENCH_runtime.json)" >&2
  exit 1
}
geomean=$(grep -o '"geomean_speedup_vs_baseline": *[0-9.]*' BENCH_runtime.json | grep -o '[0-9.]*$' || echo 1)
echo "zero-copy throughput gate OK: geomean speedup ${geomean}x vs committed baseline"

# Allocation budget on the in-process hot path: parsing a SUBMIT,
# running the engine pass and formatting the response must stay under
# the budget recorded next to the measurement.
grep -q '"alloc_budget_ok": true' BENCH_runtime.json || {
  echo "FAIL: request hot path exceeded its minor-allocation budget (see BENCH_runtime.json)" >&2
  exit 1
}
mwpr=$(grep -o '"minor_words_per_req": *[0-9.]*' BENCH_runtime.json | head -1 | grep -o '[0-9.]*$' || echo 0)
echo "allocation budget gate OK: ${mwpr} minor words/request"

echo "== BENCH_fleet.json =="
cat BENCH_fleet.json

echo "== BENCH_runtime.json =="
cat BENCH_runtime.json

echo "== BENCH_cluster.json =="
cat BENCH_cluster.json

echo "ci.sh: all green"
