#!/bin/sh
# Per-PR smoke: build, full test suite, then the parallel fleet path
# end-to-end (scaling experiment at reduced workload sizes). Run from the
# repository root.
set -eu

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== scaling experiment (fast workload) =="
EXPERIMENTS=scaling DTSCHED_FAST=1 dune exec bench/main.exe

echo "== BENCH_fleet.json =="
cat BENCH_fleet.json

echo "ci.sh: all green"
